"""Extension experiment E11 -- do special ad audiences de-bias lookalikes?

Facebook's restricted interface replaces lookalike audiences with
"special ad audiences ... adjusted to comply with the audience
selection restrictions" (paper Section 2.2).  The paper does not
measure them; this extension does, using the simulated lookalike
machinery:

1. build a demographically skewed seed audience (a retargeting pixel on
   a male-leaning website, plus a PII custom audience drawn from it);
2. expand it with a normal lookalike (similarity over interests *and*
   demographics) and with a special ad audience (demographics removed
   from the similarity features);
3. audit all three audiences' gender representation ratios.

Expected shape (and the reason the paper's composition warning extends
to derived audiences): removing demographic *features* does not remove
demographic *correlation* -- the special ad audience is less skewed
than the plain lookalike but can remain outside the four-fifths band.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import violates_four_fifths
from repro.experiments.context import ExperimentContext
from repro.platforms.audiences import TrackingPixel
from repro.population.demographics import SENSITIVE_ATTRIBUTES, Gender
from repro.reporting import Table, format_count, format_ratio

__all__ = ["LookalikeResult", "run", "run_part", "merge_parts", "PARTS"]

GENDER = SENSITIVE_ATTRIBUTES["gender"]

#: Parallel shard keys: the experiment audits both Facebook interfaces,
#: which always shard together (they share the Facebook reach client).
PARTS: tuple[str, ...] = ("facebook",)


@dataclass
class LookalikeResult:
    """Male representation ratios of seed and derived audiences."""

    seed_ratio: float = float("nan")
    lookalike_ratio: float = float("nan")
    special_ad_ratio: float = float("nan")
    seed_size: int = 0
    lookalike_size: int = 0
    special_ad_size: int = 0

    @property
    def special_ad_attenuates(self) -> bool:
        """Whether the special ad audience is less skewed than the
        plain lookalike."""
        return abs(np.log(self.special_ad_ratio)) < abs(
            np.log(self.lookalike_ratio)
        )

    @property
    def special_ad_still_skewed(self) -> bool:
        """Whether it nonetheless violates the four-fifths rule."""
        return violates_four_fifths(self.special_ad_ratio)

    def render(self) -> str:
        table = Table(["audience", "size", "male ratio", "four-fifths"])
        for label, ratio, size in (
            ("seed (pixel visitors)", self.seed_ratio, self.seed_size),
            ("lookalike", self.lookalike_ratio, self.lookalike_size),
            ("special ad audience", self.special_ad_ratio, self.special_ad_size),
        ):
            table.add_row(
                label,
                format_count(size),
                format_ratio(ratio),
                "VIOLATES" if violates_four_fifths(ratio) else "ok",
            )
        lines = [
            "Extension — lookalike vs special ad audience (gender skew)",
            table.render(),
            "",
            f"special ad audience attenuates skew: "
            f"{'yes' if self.special_ad_attenuates else 'NO'}",
            f"special ad audience still outside four-fifths: "
            f"{'YES' if self.special_ad_still_skewed else 'no'}",
        ]
        return "\n".join(lines)


def run_part(ctx: ExperimentContext, part: str) -> LookalikeResult:
    """Run one parallel shard (there is only one: the full experiment)."""
    if part != PARTS[0]:
        raise KeyError(part)
    return run(ctx)


def merge_parts(parts: dict[str, LookalikeResult]) -> LookalikeResult:
    """Reassemble shard results (trivial for a single-part experiment)."""
    return parts[PARTS[0]]


def run(ctx: ExperimentContext) -> LookalikeResult:
    """Run E11 against the shared context's Facebook platform."""
    platform = ctx.session.suite.facebook
    service = platform.audiences
    model = platform.model

    # A website whose audience leans on the most male-tilted interest
    # factor (think: motorsports parts store).
    male_factor = int(np.argmax(model.factor_gender_shift))
    pixel = TrackingPixel(
        pixel_id="ext-lookalike-site",
        base_logit=-3.2,
        direction={male_factor: 1.2},
    )
    seed = service.create_pixel_audience("seed visitors", pixel, seed=11)
    lookalike = service.create_lookalike("lookalike 1%", seed)
    special = service.create_special_ad_audience("special ad 1%", seed)

    target = ctx.target("facebook")
    restricted_target = ctx.target("facebook_restricted")

    result = LookalikeResult()
    result.seed_ratio = target.audit((seed.audience_id,), GENDER).ratio(
        Gender.MALE
    )
    result.seed_size = seed.matched_count
    result.lookalike_ratio = target.audit(
        (lookalike.audience_id,), GENDER
    ).ratio(Gender.MALE)
    result.lookalike_size = lookalike.matched_count
    # The special ad audience is what the restricted interface offers;
    # audit it through the restricted target (validated there, measured
    # via the normal interface, like every restricted audit).
    result.special_ad_ratio = restricted_target.audit(
        (special.audience_id,), GENDER
    ).ratio(Gender.MALE)
    result.special_ad_size = special.matched_count
    return result
