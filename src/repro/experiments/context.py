"""Shared experiment state: one session, cached composition sets.

Most figures reuse the same building blocks -- the individual audits of
every default option, and the Random/Top/Bottom composition sets per
(interface, sensitive value).  :class:`ExperimentContext` builds each
exactly once, which both speeds up the full run and mirrors the paper's
stated care to limit the number of API queries.
"""

from __future__ import annotations

from repro import AuditSession, build_audit_session
from repro.core import (
    CompositionSet,
    audit_individuals,
    random_compositions,
    skewed_compositions,
)
from repro.core.audit import AuditTarget
from repro.core.results import SensitiveValue
from repro.experiments.config import ExperimentConfig
from repro.population.demographics import (
    SENSITIVE_ATTRIBUTES,
    Gender,
    SensitiveAttribute,
)

__all__ = ["ExperimentContext", "TARGET_LABELS"]

#: Display names used in figure panels, in the paper's order.
TARGET_LABELS: dict[str, str] = {
    "facebook_restricted": "FB-restricted",
    "facebook": "Facebook",
    "google": "Google",
    "linkedin": "LinkedIn",
}


def _attribute_of(value: SensitiveValue) -> SensitiveAttribute:
    key = "gender" if isinstance(value, Gender) else "age"
    return SENSITIVE_ATTRIBUTES[key]


class ExperimentContext:
    """Caches the expensive intermediate products of the experiments."""

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        session: AuditSession | None = None,
    ):
        self.config = config or ExperimentConfig.full()
        self.session = session or build_audit_session(
            n_records=self.config.n_records, seed=self.config.seed
        )
        self._individuals: dict[tuple[str, str], CompositionSet] = {}
        self._sets: dict[tuple, CompositionSet] = {}

    # -- access -------------------------------------------------------------

    @property
    def target_keys(self) -> list[str]:
        """Interface keys in presentation order."""
        return self.session.target_order

    def target(self, key: str) -> AuditTarget:
        """Audit target by interface key."""
        return self.session.targets[key]

    def label(self, key: str) -> str:
        """Panel label for an interface key."""
        return TARGET_LABELS.get(key, key)

    # -- parallel-run merging -------------------------------------------------

    def export_state(self) -> dict:
        """Picklable snapshot of the cached composition sets.

        Workers in a parallel run ship their caches back so the parent
        context ends a run as warm as a sequential one (follow-up
        queries after :func:`repro.parallel.run_parallel` stay cheap).
        """
        return {
            "individuals": dict(self._individuals),
            "sets": dict(self._sets),
        }

    def absorb_state(self, state: dict) -> None:
        """Fold a worker context's caches into this one.

        Shards cover disjoint interfaces, so keys never collide; the
        engine absorbs shards in canonical order, keeping the merged
        insertion order deterministic.
        """
        self._individuals.update(state["individuals"])
        self._sets.update(state["sets"])

    # -- cached building blocks -----------------------------------------------

    def individuals(self, key: str, attribute_name: str) -> CompositionSet:
        """Individual audits of the default list (reach-unfiltered)."""
        cache_key = (key, attribute_name)
        if cache_key not in self._individuals:
            self._individuals[cache_key] = audit_individuals(
                self.target(key), SENSITIVE_ATTRIBUTES[attribute_name]
            )
        return self._individuals[cache_key]

    def individuals_for(self, key: str, value: SensitiveValue) -> CompositionSet:
        """Individual audits against the attribute of ``value``."""
        return self.individuals(key, _attribute_of(value).name)

    def random_set(
        self, key: str, attribute_name: str, arity: int = 2
    ) -> CompositionSet:
        """The Random N-way set for one interface/attribute."""
        cache_key = (key, attribute_name, "random", arity)
        if cache_key not in self._sets:
            self._sets[cache_key] = random_compositions(
                self.target(key),
                SENSITIVE_ATTRIBUTES[attribute_name],
                arity=arity,
                n=self.config.n_compositions,
                seed=self.config.seed,
            )
        return self._sets[cache_key]

    def skewed_set(
        self,
        key: str,
        value: SensitiveValue,
        direction: str,
        arity: int = 2,
    ) -> CompositionSet:
        """The Top/Bottom N-way set toward one sensitive value."""
        # Gender and AgeRange are IntEnums with overlapping raw values
        # (MALE == 0 == AGE_18_24), so the cache key must carry the type.
        cache_key = (key, type(value).__name__, int(value), direction, arity)
        if cache_key not in self._sets:
            attribute = _attribute_of(value)
            self._sets[cache_key] = skewed_compositions(
                self.target(key),
                attribute,
                self.individuals(key, attribute.name),
                value,
                direction=direction,
                arity=arity,
                n=self.config.n_compositions,
                min_reach=self.config.min_reach,
                seed=self.config.seed,
            )
        return self._sets[cache_key]

    def figure_sets(
        self,
        key: str,
        value: SensitiveValue,
        include_3way: bool = False,
    ) -> list[CompositionSet]:
        """The labelled sets one figure panel plots, reach-filtered.

        Order matches the paper's x-axes: Individual, Random 2-way,
        Top 2-way, Bottom 2-way (and optionally Top/Bottom 3-way).
        """
        attribute = _attribute_of(value)
        sets = [
            self.individuals(key, attribute.name),
            self.random_set(key, attribute.name),
            self.skewed_set(key, value, "top"),
            self.skewed_set(key, value, "bottom"),
        ]
        if include_3way:
            sets.append(self.skewed_set(key, value, "top", arity=3))
            sets.append(self.skewed_set(key, value, "bottom", arity=3))
        return [s.filtered(self.config.min_reach) for s in sets]
