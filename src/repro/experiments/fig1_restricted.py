"""Experiment E1 -- Figure 1: Facebook's restricted interface.

Reproduces the motivating experiment of Section 4.1: distributions of
representation ratios on Facebook's restricted (special-ad-category)
interface, toward males and toward ages 18-24, for

* Individual -- the 393 restricted-interface attributes;
* Random 2-way -- 1,000 random attribute pairs;
* Top / Bottom 2-way -- the ~1,000 most skewed pairs toward/away;
* Top / Bottom 3-way -- the gender panel additionally shows 3-way
  compositions ("we find that the skew is indeed amplified further").

Headline paper numbers this experiment checks against: Individual
p90/p10 of 1.84/0.50 (gender) and 1.39/0.39 (age 18-24); Top 2-way
p90 up to 8.98; Top 3-way p90 19.77; Bottom 3-way p10 0.11.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.base import Panel, panel_from_sets
from repro.experiments.context import ExperimentContext
from repro.population.demographics import AgeRange, Gender

__all__ = ["Fig1Result", "run", "run_part", "merge_parts", "PARTS"]

_KEY = "facebook_restricted"

#: Parallel shard keys: the whole figure lives on one interface.
PARTS: tuple[str, ...] = (_KEY,)


@dataclass
class Fig1Result:
    """Both panels of Figure 1 plus headline comparison numbers."""

    gender_panel: Panel
    age_panel: Panel
    headline: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        parts = [
            "Figure 1 — Facebook restricted interface",
            "",
            self.gender_panel.render(),
            "",
            self.age_panel.render(),
            "",
            "Headline numbers (paper → measured):",
        ]
        paper = {
            "individual_p90_male": 1.84,
            "individual_p10_male": 0.50,
            "individual_p90_age18_24": 1.39,
            "individual_p10_age18_24": 0.39,
            "top2_p90_male": 8.98,
            "bottom2_p10_male": 0.10,
            "top3_p90_male": 19.77,
            "bottom3_p10_male": 0.11,
        }
        for name, measured in self.headline.items():
            expected = paper.get(name)
            expected_str = f"{expected}" if expected is not None else "n/a"
            parts.append(f"  {name:<28s} {expected_str:>6s} → {measured:.2f}")
        return "\n".join(parts)


def run_part(ctx: ExperimentContext, part: str) -> Fig1Result:
    """Run one parallel shard (there is only one: the full figure)."""
    if part != _KEY:
        raise KeyError(part)
    return run(ctx)


def merge_parts(parts: dict[str, Fig1Result]) -> Fig1Result:
    """Reassemble shard results (trivial for a single-part figure)."""
    return parts[_KEY]


def run(ctx: ExperimentContext) -> Fig1Result:
    """Run E1 against the shared context."""
    gender_sets = ctx.figure_sets(_KEY, Gender.MALE, include_3way=True)
    age_sets = ctx.figure_sets(_KEY, AgeRange.AGE_18_24)

    gender_panel = panel_from_sets(
        "Repr. ratio male (FB-restricted)", gender_sets, Gender.MALE
    )
    age_panel = panel_from_sets(
        "Repr. ratio age 18-24 (FB-restricted)", age_sets, AgeRange.AGE_18_24
    )

    headline = {
        "individual_p90_male": gender_panel.row("Individual").p90,
        "individual_p10_male": gender_panel.row("Individual").p10,
        "individual_p90_age18_24": age_panel.row("Individual").p90,
        "individual_p10_age18_24": age_panel.row("Individual").p10,
        "top2_p90_male": gender_panel.row("Top 2-way").p90,
        "bottom2_p10_male": gender_panel.row("Bottom 2-way").p10,
        "top3_p90_male": gender_panel.row("Top 3-way").p90,
        "bottom3_p10_male": gender_panel.row("Bottom 3-way").p10,
    }
    return Fig1Result(
        gender_panel=gender_panel, age_panel=age_panel, headline=headline
    )
