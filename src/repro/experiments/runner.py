"""Run-everything experiment runner and CLI (``repro-audit``).

Runs each experiment against one shared :class:`ExperimentContext`
(so size queries are reused across figures, as in the paper), collects
the rendered reports, and optionally writes them to a file.

Runs survive hostile platforms: ``--chaos PROFILE`` injects a named
fault profile (throttle storms, 5xx bursts, resets, timeouts,
truncated batches) which the clients' resilience layer absorbs, and
``--checkpoint PATH`` persists every completed size estimate so a
killed run resumes without re-querying -- output stays bit-identical
either way.

``--jobs N`` shards the experiments across worker processes by
platform interface group (``repro.parallel``); results, query counts,
and rendered reports are bit-identical to a sequential run.

CLI usage::

    repro-audit --scale small
    repro-audit --scale full --out results.txt
    repro-audit --only fig1 table1 --records 60000
    repro-audit --chaos storm --checkpoint run.ckpt.json
    repro-audit --jobs 4            # 0 = one worker per CPU
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro import build_audit_session
from repro.api.chaos import FAULT_PROFILES, FaultProfile
from repro.core.checkpoint import EstimateCheckpoint
from repro.experiments import (
    ext_lookalike,
    ext_mitigation,
    fig1_restricted,
    fig2_platforms,
    fig3_removal,
    fig4_ages,
    fig5_recall,
    fig6_removal_ages,
    methodology,
    table1_overlap,
    tables23_examples,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.context import ExperimentContext
from repro.obs import NULL_METRICS, NULL_TRACER, MetricsRegistry, Tracer
from repro.parallel.engine import resolve_jobs, run_parallel

__all__ = ["EXPERIMENTS", "RunReport", "run_all", "main"]

#: Experiment registry: name -> (paper artifact, runner callable).
EXPERIMENTS: dict[str, tuple[str, Callable]] = {
    "fig1": ("Figure 1 (FB-restricted distributions)", fig1_restricted.run),
    "fig2": ("Figure 2 (cross-platform distributions)", fig2_platforms.run),
    "fig3": ("Figure 3 (removal sweep, gender)", fig3_removal.run),
    "fig4": ("Figure 4 (age-range distributions)", fig4_ages.run),
    "fig5": ("Figure 5 (recall distributions)", fig5_recall.run),
    "fig6": ("Figure 6 (removal sweeps, ages)", fig6_removal_ages.run),
    "table1": ("Table 1 (overlap / union recall)", table1_overlap.run),
    "tables23": ("Tables 2-3 (illustrative compositions)", tables23_examples.run),
    "methodology": ("Section 3 (size-estimate studies)", methodology.run),
    "ext_lookalike": (
        "Extension (lookalike vs special ad audience)",
        ext_lookalike.run,
    ),
    "ext_mitigation": (
        "Extension (outcome-based vs removal mitigation)",
        ext_mitigation.run,
    ),
}


@dataclass
class RunReport:
    """Results and timings of one full experiment run."""

    config: ExperimentConfig
    results: dict[str, object] = field(default_factory=dict)
    durations: dict[str, float] = field(default_factory=dict)
    total_api_requests: int = 0
    #: End-to-end wall time of the run, including session build.
    total_wall: float = 0.0
    #: Worker processes the run used (1 = sequential).
    jobs: int = 1

    def render(self) -> str:
        parts = [
            "Reproduction run — 'On the Potential for Discrimination via "
            "Composition' (IMC 2020)",
            f"records/platform={self.config.n_records:,} "
            f"compositions/set={self.config.n_compositions} "
            f"seed={self.config.seed}",
            "",
        ]
        for name, result in self.results.items():
            title, _ = EXPERIMENTS[name]
            header = f"== {name}: {title} ({self.durations[name]:.1f}s) =="
            parts += [header, result.render(), ""]
        parts.append(
            f"Total simulated API requests: {self.total_api_requests:,} "
            "(paper: 80,000+ per platform)"
        )
        parts.append(
            f"Total wall time: {self.total_wall:.1f}s (jobs={self.jobs})"
        )
        return "\n".join(parts)


def run_all(
    config: ExperimentConfig | None = None,
    only: list[str] | None = None,
    context: ExperimentContext | None = None,
    verbose: bool = False,
    chaos: FaultProfile | str | None = None,
    chaos_seed: int = 1031,
    checkpoint: EstimateCheckpoint | str | Path | None = None,
    jobs: int = 1,
    tracer=None,
    metrics=None,
) -> RunReport:
    """Run the selected experiments over one shared context.

    ``tracer`` / ``metrics`` (see :mod:`repro.obs`) are threaded into
    the session build and wrap each experiment in a span / metrics
    scope.  When an explicit ``context`` is supplied they default to
    its session's sinks, so a caller who built a traced session gets
    experiment spans without passing the tracer twice.  Observability
    never changes what a run computes.

    ``chaos`` builds the session over a fault-injecting transport (by
    profile or name from :data:`FAULT_PROFILES`); ignored when an
    explicit ``context`` is supplied.  ``checkpoint`` attaches an
    estimate checkpoint (a store, or a path that is loaded if present)
    to every audit target: completed size estimates persist even when
    an experiment raises mid-run -- e.g. an exhausted circuit breaker
    during an outage -- and a re-run with the same checkpoint resumes
    without re-issuing them, producing bit-identical output.

    ``jobs`` > 1 dispatches to :func:`repro.parallel.run_parallel`
    (``0`` means one worker per CPU); the report is bit-identical to a
    sequential run apart from wall times.  Parallel runs build their
    own per-worker sessions, so an explicit ``context`` is rejected.
    """
    config = config or ExperimentConfig.full()
    names = list(only or EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")
    if context is not None:
        if tracer is None:
            tracer = context.session.tracer
        if metrics is None:
            metrics = context.session.metrics
    tracer = tracer if tracer is not None else NULL_TRACER
    metrics = metrics if metrics is not None else NULL_METRICS

    started_wall = time.perf_counter()
    effective_jobs = resolve_jobs(jobs)
    if effective_jobs > 1:
        if context is not None:
            raise ValueError(
                "jobs > 1 builds its own per-worker sessions; pass a "
                "config instead of an explicit context"
            )
        run = run_parallel(
            config,
            names,
            effective_jobs,
            chaos=chaos,
            chaos_seed=chaos_seed,
            checkpoint=checkpoint,
            verbose=verbose,
            tracer=tracer,
            metrics=metrics,
        )
        return RunReport(
            config=config,
            results=run.results,
            durations=run.durations,
            total_api_requests=run.total_api_requests,
            total_wall=time.perf_counter() - started_wall,
            jobs=effective_jobs,
        )

    if context is None and (
        chaos is not None or tracer.enabled or metrics.enabled
    ):
        session = build_audit_session(
            n_records=config.n_records,
            seed=config.seed,
            chaos=chaos,
            chaos_seed=chaos_seed,
            tracer=tracer,
            metrics=metrics,
        )
        context = ExperimentContext(config, session=session)
    ctx = context or ExperimentContext(config)

    store: EstimateCheckpoint | None = None
    if checkpoint is not None:
        store = (
            checkpoint
            if isinstance(checkpoint, EstimateCheckpoint)
            else EstimateCheckpoint(checkpoint)
        )
        for target in ctx.session.targets.values():
            target.attach_checkpoint(store)
        if verbose and len(store):
            print(
                f"resuming from checkpoint: {len(store):,} estimates",
                file=sys.stderr,
                flush=True,
            )

    report = RunReport(config=ctx.config)
    try:
        for name in names:
            title, runner = EXPERIMENTS[name]
            if verbose:
                print(f"running {name}: {title} ...", file=sys.stderr, flush=True)
            started = time.perf_counter()
            with tracer.span(f"experiment.{name}"), metrics.scope(
                experiment=name
            ):
                report.results[name] = runner(ctx)
            report.durations[name] = time.perf_counter() - started
    finally:
        # Persist whatever completed, even when an experiment raised --
        # that is the whole point of the checkpoint.
        if store is not None and store.path is not None:
            store.save()
            if tracer.enabled:
                tracer.event("checkpoint.save", entries=len(store))
    report.total_api_requests = ctx.session.total_api_requests()
    report.total_wall = time.perf_counter() - started_wall
    return report


def main(argv: list[str] | None = None) -> int:
    """``repro-audit`` console entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-audit",
        description=(
            "Regenerate the figures and tables of 'On the Potential for "
            "Discrimination via Composition' against the simulated platforms."
        ),
    )
    parser.add_argument(
        "--scale",
        choices=("full", "small", "tiny"),
        default="small",
        help="experiment scale preset (default: small)",
    )
    parser.add_argument(
        "--records", type=int, default=None, help="override records/platform"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the root seed"
    )
    parser.add_argument(
        "--compositions",
        type=int,
        default=None,
        help="override compositions per Random/Top/Bottom set",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        choices=sorted(EXPERIMENTS),
        default=None,
        help="run only these experiments",
    )
    parser.add_argument(
        "--out", type=str, default=None, help="also write the report here"
    )
    parser.add_argument(
        "--chaos",
        choices=sorted(FAULT_PROFILES),
        default=None,
        help="inject a named fault profile (results are unaffected)",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=1031,
        help="seed of the injected fault sequence (default: 1031)",
    )
    parser.add_argument(
        "--checkpoint",
        type=str,
        default=None,
        help=(
            "persist completed size estimates here and resume from the "
            "file if it already exists"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes to shard the experiments across "
            "(default: 1 = sequential; 0 = one per CPU); output is "
            "bit-identical to a sequential run"
        ),
    )
    parser.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "record a structured trace of the run and write it as JSONL "
            "here (summarize with repro-trace); results are unaffected"
        ),
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="aggregate counters/histograms and print them after the report",
    )
    args = parser.parse_args(argv)

    config = getattr(ExperimentConfig, args.scale)()
    if args.records is not None:
        config = config.with_records(args.records)
    if args.seed is not None or args.compositions is not None:
        from dataclasses import replace

        overrides = {}
        if args.seed is not None:
            overrides["seed"] = args.seed
        if args.compositions is not None:
            overrides["n_compositions"] = args.compositions
        config = replace(config, **overrides)

    # The CLI is a composition root: the one place in the library
    # allowed to construct observability sinks.
    tracer = None
    if args.trace:
        tracer = Tracer(  # repro-lint: disable=obs/ambient-instrumentation
            "repro-audit", scale=args.scale, jobs=args.jobs
        )
    metrics = None
    if args.metrics:
        metrics = MetricsRegistry()  # repro-lint: disable=obs/ambient-instrumentation

    report = run_all(
        config=config,
        only=args.only,
        verbose=True,
        chaos=args.chaos,
        chaos_seed=args.chaos_seed,
        checkpoint=args.checkpoint,
        jobs=args.jobs,
        tracer=tracer,
        metrics=metrics,
    )
    text = report.render()
    print(text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
    if tracer is not None:
        path = tracer.write_jsonl(args.trace)
        print(f"trace written to {path}", file=sys.stderr, flush=True)
    if metrics is not None:
        print("", flush=True)
        print(metrics.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
