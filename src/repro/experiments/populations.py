"""Favoured sensitive populations.

The paper's recall analyses (Figure 5, Table 1) are organised around
the population an advertiser *favours*: a skewed targeting can favour
males, favour females, or favour "everyone except an age range" (i.e.
selectively exclude young or old users).  :class:`FavoredPopulation`
captures one such choice and knows how to read the right ratio, recall,
and discovery direction off a :class:`~repro.core.results.TargetingAudit`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import FOUR_FIFTHS_HIGH, FOUR_FIFTHS_LOW
from repro.core.results import SensitiveValue, TargetingAudit
from repro.population.demographics import (
    AgeRange,
    Gender,
    SENSITIVE_ATTRIBUTES,
    SensitiveAttribute,
)

__all__ = ["FavoredPopulation", "TABLE1_POPULATIONS", "FIG5_POPULATIONS"]


@dataclass(frozen=True)
class FavoredPopulation:
    """A sensitive population an advertiser might selectively reach.

    ``exclude=False`` favours ``RA_value`` (targetings skewed *toward*
    the value); ``exclude=True`` favours ``RA_{not value}`` (targetings
    skewed *away*, i.e. the paper's "Age not 18-24" rows).
    """

    value: SensitiveValue
    exclude: bool = False

    @property
    def attribute(self) -> SensitiveAttribute:
        """The sensitive attribute the value belongs to."""
        key = "gender" if isinstance(self.value, Gender) else "age"
        return SENSITIVE_ATTRIBUTES[key]

    @property
    def label(self) -> str:
        """Display label matching the paper's table rows."""
        if isinstance(self.value, Gender):
            return self.value.label.capitalize()
        prefix = "Age not" if self.exclude else "Age"
        return f"{prefix} {self.value.label}"

    @property
    def direction(self) -> str:
        """Greedy-discovery direction producing favouring targetings."""
        return "bottom" if self.exclude else "top"

    def favours(self, audit: TargetingAudit) -> bool:
        """Whether the audit's skew favours this population beyond the
        four-fifths thresholds."""
        ratio = audit.ratio(self.value)
        if self.exclude:
            return ratio <= FOUR_FIFTHS_LOW
        return ratio >= FOUR_FIFTHS_HIGH

    def recall(self, audit: TargetingAudit) -> int:
        """Recall of this population achieved by the audited targeting."""
        if self.exclude:
            return audit.recall_excluding(self.value)
        return audit.recall(self.value)

    def population_size(self, bases: dict[SensitiveValue, int]) -> int:
        """Total size of this population on the platform."""
        if self.exclude:
            return int(sum(v for k, v in bases.items() if k != self.value))
        return int(bases[self.value])


#: The four favoured populations of the paper's Table 1.
TABLE1_POPULATIONS: tuple[FavoredPopulation, ...] = (
    FavoredPopulation(Gender.MALE),
    FavoredPopulation(Gender.FEMALE),
    FavoredPopulation(AgeRange.AGE_18_24, exclude=True),
    FavoredPopulation(AgeRange.AGE_55_PLUS, exclude=True),
)

#: The populations whose recall distributions Figure 5 plots.
FIG5_POPULATIONS: tuple[FavoredPopulation, ...] = (
    FavoredPopulation(Gender.MALE),
    FavoredPopulation(Gender.FEMALE),
    FavoredPopulation(AgeRange.AGE_18_24),
    FavoredPopulation(AgeRange.AGE_55_PLUS),
    FavoredPopulation(AgeRange.AGE_18_24, exclude=True),
    FavoredPopulation(AgeRange.AGE_55_PLUS, exclude=True),
)
