"""Experiment E4 -- Figure 4: skew distributions across age ranges.

Appendix A extends Figures 1-2 to the remaining age ranges (25-34,
35-54, 55+) across all four interfaces.  The qualitative expectation:
individual attributes already contain highly skewed options, random
pairs moderately exacerbate the skew, and the most skewed pairs
exacerbate it further -- in particular, older users (e.g. 55+ on
LinkedIn) can be effectively excluded via compositions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.base import Panel, panel_from_sets
from repro.experiments.context import TARGET_LABELS, ExperimentContext
from repro.population.demographics import AgeRange

__all__ = ["Fig4Result", "run", "run_part", "merge_parts", "PARTS", "FIG4_AGES"]

#: Parallel shard keys: one per audited interface.
PARTS: tuple[str, ...] = tuple(TARGET_LABELS)

#: The age panels Figure 4 adds beyond Figure 1/2's 18-24.
FIG4_AGES: tuple[AgeRange, ...] = (
    AgeRange.AGE_25_34,
    AgeRange.AGE_35_54,
    AgeRange.AGE_55_PLUS,
)


@dataclass
class Fig4Result:
    """Panels keyed by (age range, interface key)."""

    panels: dict[tuple[AgeRange, str], Panel] = field(default_factory=dict)

    def panel(self, age: AgeRange, key: str) -> Panel:
        """Panel for one age range on one interface."""
        return self.panels[(age, key)]

    def render(self) -> str:
        parts = ["Figure 4 — Skew across age ranges (all interfaces)"]
        for (age, key), panel in self.panels.items():
            parts += ["", panel.render()]
        return "\n".join(parts)


def run_part(
    ctx: ExperimentContext,
    part: str,
    ages: tuple[AgeRange, ...] = FIG4_AGES,
) -> dict[AgeRange, Panel]:
    """All age panels for one interface (ages in figure order)."""
    panels: dict[AgeRange, Panel] = {}
    for age in ages:
        sets = ctx.figure_sets(part, age)
        panels[age] = panel_from_sets(
            f"Repr. ratio age {age.label} ({ctx.label(part)})", sets, age
        )
    return panels


def merge_parts(
    parts: dict[str, dict[AgeRange, Panel]],
    ages: tuple[AgeRange, ...] = FIG4_AGES,
) -> Fig4Result:
    """Interleave per-interface shards back into age-major order."""
    result = Fig4Result()
    for age in ages:
        for key in parts:
            result.panels[(age, key)] = parts[key][age]
    return result


def run(
    ctx: ExperimentContext,
    ages: tuple[AgeRange, ...] = FIG4_AGES,
    keys: tuple[str, ...] | None = None,
) -> Fig4Result:
    """Run E4 against the shared context."""
    keys = keys or tuple(ctx.target_keys)
    return merge_parts({key: run_part(ctx, key, ages) for key in keys}, ages)
