"""Experiment E10 -- Section 3's "Understanding size estimates".

Three sub-studies per interface, all driven through the API clients:

1. **Consistency**: 100 back-to-back repeated calls for 20 random
   targeting options and 20 random compositions; the paper finds the
   estimates consistent on all three platforms.
2. **Granularity**: pooling every estimate collected during the audit
   (the paper used 80,000+ distinct calls per platform) and inferring
   the rounding rule; expected inference -- Facebook 2 significant
   digits with minimum 1,000; Google 1 digit below 100k / 2 above with
   minimum 40; LinkedIn 2 digits with minimum 300.
3. **Sensitivity**: re-evaluating measured skew at the least skewed
   representation ratios consistent with the rounding ranges; the
   paper finds "very similar degrees of skew".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.rounding_study import (
    ConsistencyReport,
    GranularityReport,
    SensitivityReport,
    consistency_study,
    infer_granularity,
    sensitivity_study,
)
from repro.experiments.context import TARGET_LABELS, ExperimentContext
from repro.platforms.targeting import TargetingSpec
from repro.population.demographics import Gender
from repro.reporting import Table, format_percent

__all__ = ["MethodologyResult", "run", "run_part", "merge_parts", "PARTS"]

#: Parallel shard keys: one per studied interface.
PARTS: tuple[str, ...] = tuple(TARGET_LABELS)


@dataclass
class MethodologyResult:
    """Per-interface consistency / granularity / sensitivity reports."""

    consistency: dict[str, ConsistencyReport] = field(default_factory=dict)
    granularity: dict[str, GranularityReport] = field(default_factory=dict)
    sensitivity: dict[str, SensitivityReport] = field(default_factory=dict)

    def render(self) -> str:
        table = Table(
            [
                "interface",
                "consistent",
                "granularity",
                "skew preserved at least-skewed ratio",
            ]
        )
        for key in self.granularity:
            consistency = self.consistency.get(key)
            sensitivity = self.sensitivity.get(key)
            table.add_row(
                key,
                "yes" if consistency and consistency.all_consistent else "NO",
                self.granularity[key].summary(),
                format_percent(sensitivity.skew_preserved_fraction)
                if sensitivity
                else "-",
            )
        return "Methodology — size-estimate studies\n" + table.render()


def _random_specs(
    ctx: ExperimentContext, key: str, n_options: int, n_compositions: int
) -> list[TargetingSpec]:
    rng = np.random.default_rng(ctx.config.seed)
    target = ctx.target(key)
    options = target.study_option_ids()
    specs: list[TargetingSpec] = []
    picks = rng.choice(len(options), size=min(n_options, len(options)), replace=False)
    specs += [TargetingSpec.of(options[i]) for i in picks]
    made = 0
    attempts = 0
    while made < n_compositions and attempts < 50 * n_compositions:
        attempts += 1
        i, j = rng.choice(len(options), size=2, replace=False)
        pair = (options[i], options[j])
        if not target.can_compose(pair):
            continue
        specs.append(TargetingSpec.of(*pair))
        made += 1
    return specs


def run_part(
    ctx: ExperimentContext, part: str
) -> tuple[ConsistencyReport, GranularityReport, SensitivityReport]:
    """All three sub-studies for one interface."""
    key = part
    target = ctx.target(key)
    specs = _random_specs(
        ctx,
        key,
        ctx.config.consistency_targetings,
        ctx.config.consistency_targetings,
    )
    consistency = consistency_study(
        target.measure_client, specs, repeats=ctx.config.consistency_repeats
    )

    individual = ctx.individuals(key, "gender")
    estimates: list[int] = [
        size for audit in individual.audits for size in audit.sizes.values()
    ]
    estimates += target.cached_estimates()
    granularity = infer_granularity(estimates)

    rounding = ctx.session.suite.interfaces[key].rounding
    sensitivity = sensitivity_study(
        individual.filtered(ctx.config.min_reach).audits,
        Gender.MALE,
        rounding,
    )
    return consistency, granularity, sensitivity


def merge_parts(
    parts: dict[
        str, tuple[ConsistencyReport, GranularityReport, SensitivityReport]
    ],
) -> MethodologyResult:
    """Reassemble per-interface shards in presentation order."""
    result = MethodologyResult()
    for key in parts:
        consistency, granularity, sensitivity = parts[key]
        result.consistency[key] = consistency
        result.granularity[key] = granularity
        result.sensitivity[key] = sensitivity
    return result


def run(ctx: ExperimentContext) -> MethodologyResult:
    """Run E10 against the shared context.

    The granularity analysis pools every estimate currently in the
    audit caches (so running this after the figure experiments analyses
    the same tens of thousands of calls the paper pooled); if a cache
    is empty, a fresh individual sweep fills it.
    """
    return merge_parts(
        {key: run_part(ctx, key) for key in ctx.target_keys}
    )
