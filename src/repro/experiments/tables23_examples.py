"""Experiments E8/E9 -- Tables 2 and 3: illustrative skewed compositions.

The paper's Tables 2 and 3 list concrete "Top 2-way" compositions where
AND-combining two individually skewed options yields a much more skewed
targeting (e.g. *Electrical engineering* AND *Cars*: 3.71 and 2.18
individually, 12.43 combined).  This experiment selects equivalent
illustrative rows from the measured Top 2-way sets: compositions whose
combined ratio exceeds both components' individual ratios by a margin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core import CompositionSet
from repro.core.results import SensitiveValue
from repro.experiments.context import TARGET_LABELS, ExperimentContext
from repro.population.demographics import AgeRange, Gender
from repro.reporting import Table, format_ratio

__all__ = [
    "ExampleRow",
    "ExamplesResult",
    "run",
    "run_part",
    "merge_parts",
    "PARTS",
    "select_examples",
]

#: Parallel shard keys: one per audited interface.
PARTS: tuple[str, ...] = tuple(TARGET_LABELS)


@dataclass(frozen=True)
class ExampleRow:
    """One illustrative composition row."""

    target_key: str
    value: SensitiveValue
    option_1: str
    option_2: str
    name_1: str
    name_2: str
    ratio_1: float
    ratio_2: float
    ratio_combined: float

    @property
    def amplification(self) -> float:
        """Combined ratio over the more skewed individual ratio."""
        top = max(self.ratio_1, self.ratio_2)
        return self.ratio_combined / top if top else math.nan


def select_examples(
    individual: CompositionSet,
    top_set: CompositionSet,
    value: SensitiveValue,
    names: dict[str, str],
    target_key: str,
    k: int = 5,
    min_amplification: float = 1.3,
) -> list[ExampleRow]:
    """Pick the most compelling amplification examples from a Top set.

    A row qualifies when the combined ratio exceeds both individual
    ratios by ``min_amplification``; rows are ranked by combined ratio.
    For "bottom"-style sets (ratios below 1), pass the reciprocal view
    by selecting on the favoured population's value instead.
    """
    from repro.core.metrics import FOUR_FIFTHS_HIGH

    individual_ratio = {
        audit.options[0]: audit.ratio(value) for audit in individual.audits
    }
    rows: list[ExampleRow] = []
    for audit in top_set.audits:
        if len(audit.options) != 2:
            continue
        o1, o2 = audit.options
        r1, r2 = individual_ratio.get(o1), individual_ratio.get(o2)
        combined = audit.ratio(value)
        if r1 is None or r2 is None:
            continue
        if any(math.isnan(x) or math.isinf(x) for x in (r1, r2, combined)):
            continue
        # Match the paper's table structure: both components individually
        # skewed toward the favoured value, and the combination clearly
        # more skewed than either.
        if min(r1, r2) < FOUR_FIFTHS_HIGH:
            continue
        if combined < max(r1, r2) * min_amplification:
            continue
        rows.append(
            ExampleRow(
                target_key=target_key,
                value=value,
                option_1=o1,
                option_2=o2,
                name_1=names.get(o1, o1),
                name_2=names.get(o2, o2),
                ratio_1=r1,
                ratio_2=r2,
                ratio_combined=combined,
            )
        )
    rows.sort(key=lambda row: row.ratio_combined, reverse=True)
    return rows[:k]


@dataclass
class ExamplesResult:
    """Illustrative rows keyed by (interface key, value label)."""

    rows: dict[tuple[str, str], list[ExampleRow]] = field(default_factory=dict)

    def render(self) -> str:
        parts = ["Tables 2/3 — Illustrative skewed compositions"]
        for (key, value_label), examples in self.rows.items():
            table = Table(
                ["T1", "T2", "T1 ratio", "T2 ratio", "T1 AND T2"]
            )
            for row in examples:
                table.add_row(
                    row.name_1[:46],
                    row.name_2[:46],
                    format_ratio(row.ratio_1),
                    format_ratio(row.ratio_2),
                    format_ratio(row.ratio_combined),
                )
            parts += ["", f"{key} — favouring {value_label}", table.render()]
        return "\n".join(parts)


#: Favoured values illustrated by Tables 2 (gender) and 3 (age).
_FAVOURED: tuple[tuple[SensitiveValue, str, str], ...] = (
    (Gender.MALE, "male", "top"),
    (Gender.FEMALE, "female", "top"),
    (AgeRange.AGE_18_24, "ages 18-24", "top"),
    (AgeRange.AGE_55_PLUS, "ages 55+", "top"),
)


def run_part(
    ctx: ExperimentContext, part: str, k: int = 5
) -> dict[tuple[str, str], list[ExampleRow]]:
    """Illustrative rows for one interface, keyed like the result.

    Favoured values that yield no qualifying examples are absent
    (matching the sequential behaviour).
    """
    key = part
    rows: dict[tuple[str, str], list[ExampleRow]] = {}
    names = ctx.target(key).option_names()
    for value, value_label, _ in _FAVOURED:
        attribute = "gender" if isinstance(value, Gender) else "age"
        individual = ctx.individuals(key, attribute).filtered(
            ctx.config.min_reach
        )
        top_set = ctx.skewed_set(key, value, "top").filtered(
            ctx.config.min_reach
        )
        examples = select_examples(
            individual, top_set, value, names, key, k=k
        )
        if examples:
            rows[(key, value_label)] = examples
    return rows


def merge_parts(
    parts: dict[str, dict[tuple[str, str], list[ExampleRow]]],
) -> ExamplesResult:
    """Concatenate per-interface shards in presentation order."""
    result = ExamplesResult()
    for key in parts:
        result.rows.update(parts[key])
    return result


def run(
    ctx: ExperimentContext,
    keys: tuple[str, ...] | None = None,
    k: int = 5,
) -> ExamplesResult:
    """Run E8/E9 against the shared context.

    Gender rows (Table 2) favour males and females; age rows (Table 3)
    favour 18-24 and 55+.
    """
    keys = keys or tuple(ctx.target_keys)
    return merge_parts({key: run_part(ctx, key, k=k) for key in keys})
