"""Shared result shapes for the figure experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core import CompositionSet
from repro.core.results import SensitiveValue
from repro.core.stats import BoxStats
from repro.reporting import render_box_panel

__all__ = ["Panel", "panel_from_sets"]


@dataclass
class Panel:
    """One figure panel: a titled list of labelled box distributions."""

    title: str
    rows: list[tuple[str, BoxStats]] = field(default_factory=list)

    def render(self) -> str:
        """ASCII box-plot rendering of the panel."""
        return render_box_panel(self.title, self.rows)

    def row(self, label: str) -> BoxStats:
        """Find a row's stats by label (KeyError if absent)."""
        for row_label, box in self.rows:
            if row_label == label:
                return box
        raise KeyError(label)


def panel_from_sets(
    title: str, sets: Sequence[CompositionSet], value: SensitiveValue
) -> Panel:
    """Panel of representation-ratio distributions toward ``value``."""
    return Panel(
        title=title,
        rows=[
            (s.label, BoxStats.from_values(s.ratios(value)))
            for s in sets
        ],
    )
