"""Experiment E3 -- Figure 3: removing skewed individual targetings.

Section 4.3 mitigation analysis for gender: remove the most
male-skewed (resp. female-skewed) individual options in 2-percentile
steps, re-discover the Top (resp. Bottom) 2-way compositions among the
survivors, and track the 90th (resp. 10th) percentile representation
ratio.

Headline check: even after removing the top 10th percentile of
male-skewed individual attributes on Facebook's restricted interface,
the resulting Top 2-way p90 was still 3.02 (highest 5.23) -- removal
reduces but does not eliminate compositional skew.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import removal_sweep
from repro.core.removal import RemovalCurve
from repro.experiments.context import TARGET_LABELS, ExperimentContext
from repro.population.demographics import Gender, SENSITIVE_ATTRIBUTES
from repro.reporting import Table, format_ratio

__all__ = ["Fig3Result", "run", "run_for_value", "run_part", "merge_parts", "PARTS"]

#: Parallel shard keys: one per audited interface.
PARTS: tuple[str, ...] = tuple(TARGET_LABELS)


@dataclass
class Fig3Result:
    """Top and Bottom removal curves per interface (gender/male)."""

    top_curves: dict[str, RemovalCurve] = field(default_factory=dict)
    bottom_curves: dict[str, RemovalCurve] = field(default_factory=dict)

    def render(self) -> str:
        parts = ["Figure 3 — Removal of skewed individual targetings (male)"]
        for direction, curves in (
            ("Top 2-way (p90)", self.top_curves),
            ("Bottom 2-way (p10)", self.bottom_curves),
        ):
            percentiles = None
            table = None
            for key, curve in curves.items():
                series = curve.headline_series()
                if table is None:
                    percentiles = [p for p, _ in series]
                    table = Table(
                        ["interface"] + [f"{p:g}%" for p in percentiles]
                    )
                table.add_row(
                    key, *[format_ratio(r) for _, r in series]
                )
            parts += ["", direction, table.render() if table else "(none)"]
        return "\n".join(parts)


def run_for_value(
    ctx: ExperimentContext, value, keys: tuple[str, ...] | None = None
) -> Fig3Result:
    """Removal sweeps toward one sensitive value on the given interfaces."""
    attribute = SENSITIVE_ATTRIBUTES[
        "gender" if isinstance(value, Gender) else "age"
    ]
    result = Fig3Result()
    for key in keys or tuple(ctx.target_keys):
        individual = ctx.individuals(key, attribute.name)
        common = dict(
            target=ctx.target(key),
            attribute=attribute,
            individual=individual,
            value=value,
            percentiles=ctx.config.removal_percentiles,
            n_compositions=ctx.config.n_compositions,
            min_reach=ctx.config.min_reach,
            seed=ctx.config.seed,
        )
        result.top_curves[key] = removal_sweep(direction="top", **common)
        result.bottom_curves[key] = removal_sweep(direction="bottom", **common)
    return result


def run_part(ctx: ExperimentContext, part: str) -> Fig3Result:
    """Both removal curves (gender/male) for one interface."""
    return run_for_value(ctx, Gender.MALE, keys=(part,))


def merge_parts(parts: dict[str, Fig3Result]) -> Fig3Result:
    """Concatenate single-interface shards in presentation order."""
    result = Fig3Result()
    for key in PARTS:
        result.top_curves.update(parts[key].top_curves)
        result.bottom_curves.update(parts[key].bottom_curves)
    return result


def run(ctx: ExperimentContext) -> Fig3Result:
    """Run E3 (gender/male) against the shared context."""
    return run_for_value(ctx, Gender.MALE)
