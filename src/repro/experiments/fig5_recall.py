"""Experiment E5 -- Figure 5: recall of skewed targetings.

Section 4.3 ("Recall of targeting compositions") and Appendix A: for
each favoured sensitive population and each interface, plot the
distribution of recalls (|TA and RA_s|) achieved by

* all individual targeting options (reference),
* the individually *skewed* options (outside four-fifths toward the
  favoured population),
* the skewed Random 2-way pairs,
* the skewed Top 2-way pairs,

alongside the total size of the sensitive population on that platform.

Headline checks (females): Top 2-way median recalls of 570K (0.47%),
1.9M (1.58%), 170K (0.01%), 46K (0.06%) on FB-restricted / FB / Google
/ LinkedIn, and median individual recalls of 3.2M / 5.2M / 11M / 1.4M;
compositions achieve substantially lower recalls than individual
options while remaining large enough to be useful to advertisers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core import CompositionSet
from repro.core.stats import BoxStats
from repro.experiments.context import TARGET_LABELS, ExperimentContext
from repro.experiments.populations import FIG5_POPULATIONS, FavoredPopulation
from repro.reporting import Table, format_count, format_percent

__all__ = [
    "RecallPanel",
    "Fig5Result",
    "run",
    "run_part",
    "merge_parts",
    "PARTS",
]

#: Parallel shard keys: one per audited interface.
PARTS: tuple[str, ...] = tuple(TARGET_LABELS)


@dataclass
class RecallPanel:
    """Recall distributions for one (population, interface) pair."""

    population: FavoredPopulation
    target_key: str
    population_size: int
    rows: list[tuple[str, BoxStats]] = field(default_factory=list)

    def row(self, label: str) -> BoxStats:
        """Stats row by label."""
        for row_label, box in self.rows:
            if row_label == label:
                return box
        raise KeyError(label)

    def median_recall_fraction(self, label: str) -> float:
        """Median recall as a fraction of the sensitive population."""
        box = self.row(label)
        if box.is_empty or self.population_size == 0:
            return math.nan
        return box.median / self.population_size


@dataclass
class Fig5Result:
    """All recall panels, keyed by (population label, interface key)."""

    panels: dict[tuple[str, str], RecallPanel] = field(default_factory=dict)

    def panel(self, population_label: str, key: str) -> RecallPanel:
        """Panel lookup."""
        return self.panels[(population_label, key)]

    def render(self) -> str:
        parts = ["Figure 5 — Recall of skewed targetings"]
        current_pop = None
        table: Table | None = None
        for (pop_label, key), panel in self.panels.items():
            if pop_label != current_pop:
                if table is not None:
                    parts += ["", f"Recall {current_pop}", table.render()]
                current_pop = pop_label
                table = Table(
                    [
                        "interface",
                        "population",
                        "med individual",
                        "med ind-skewed",
                        "med random-skewed",
                        "med top 2-way",
                        "top2 med %",
                    ]
                )
            med = panel.median_recall_fraction("Top 2-way (skewed)")
            table.add_row(
                key,
                format_count(panel.population_size),
                format_count(panel.row("Individual (all)").median),
                format_count(panel.row("Individual (skewed)").median),
                format_count(panel.row("Random 2-way (skewed)").median),
                format_count(panel.row("Top 2-way (skewed)").median),
                format_percent(med),
            )
        if table is not None:
            parts += ["", f"Recall {current_pop}", table.render()]
        return "\n".join(parts)


def _recalls(
    composition_set: CompositionSet,
    population: FavoredPopulation,
    skewed_only: bool,
) -> list[int]:
    audits = composition_set.audits
    if skewed_only:
        audits = [a for a in audits if population.favours(a)]
    return [population.recall(a) for a in audits]


def run_part(
    ctx: ExperimentContext,
    part: str,
    populations: tuple[FavoredPopulation, ...] = FIG5_POPULATIONS,
) -> dict[str, RecallPanel]:
    """All population panels for one interface, keyed by label."""
    panels: dict[str, RecallPanel] = {}
    for population in populations:
        attribute = population.attribute
        key = part
        target = ctx.target(key)
        individual = ctx.individuals(key, attribute.name).filtered(
            ctx.config.min_reach
        )
        random_set = ctx.random_set(key, attribute.name).filtered(
            ctx.config.min_reach
        )
        top_set = ctx.skewed_set(
            key, population.value, population.direction
        ).filtered(ctx.config.min_reach)
        bases = target.base_sizes(attribute)
        panels[population.label] = RecallPanel(
                population=population,
                target_key=key,
                population_size=population.population_size(bases),
                rows=[
                    (
                        "Individual (all)",
                        BoxStats.from_values(
                            _recalls(individual, population, False)
                        ),
                    ),
                    (
                        "Individual (skewed)",
                        BoxStats.from_values(
                            _recalls(individual, population, True)
                        ),
                    ),
                    (
                        "Random 2-way (skewed)",
                        BoxStats.from_values(
                            _recalls(random_set, population, True)
                        ),
                    ),
                    (
                        "Top 2-way (skewed)",
                        BoxStats.from_values(
                            _recalls(top_set, population, True)
                        ),
                    ),
                ],
            )
    return panels


def merge_parts(
    parts: dict[str, dict[str, RecallPanel]],
    populations: tuple[FavoredPopulation, ...] = FIG5_POPULATIONS,
) -> Fig5Result:
    """Interleave per-interface shards back into population-major order."""
    result = Fig5Result()
    for population in populations:
        for key in parts:
            result.panels[(population.label, key)] = parts[key][population.label]
    return result


def run(
    ctx: ExperimentContext,
    populations: tuple[FavoredPopulation, ...] = FIG5_POPULATIONS,
    keys: tuple[str, ...] | None = None,
) -> Fig5Result:
    """Run E5 against the shared context."""
    keys = keys or tuple(ctx.target_keys)
    return merge_parts(
        {key: run_part(ctx, key, populations) for key in keys}, populations
    )
