"""Extension experiment E12 -- outcome-based vs removal-based mitigation.

The paper's concluding discussion proposes detecting "advertisers who
consistently target skewed audiences" from the *outcome* of their
composed targetings, arguing that option-removal cannot work.  This
extension simulates an advertiser population on Facebook's restricted
interface and scores both policies:

* **honest advertisers** compose random pairs of allowed options (the
  paper's Random 2-way behaviour);
* a **discriminatory advertiser** uses the greedy most-skewed pairs;
* the **removal policy** bans the top-10-percentile skewed individual
  options and blocks campaigns using them;
* the **outcome monitor** reviews every composed campaign and flags
  advertisers whose history is consistently skewed.

Expected shape: the removal policy barely touches the discriminatory
campaigns (their components survive sanitisation) while the outcome
monitor flags the discriminator without flagging most honest
advertisers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.discovery import greedy_candidates
from repro.core.mitigation import OutcomeMonitor, RemovalPolicy
from repro.experiments.context import ExperimentContext
from repro.population.demographics import SENSITIVE_ATTRIBUTES, Gender
from repro.reporting import Table, format_percent

__all__ = ["MitigationResult", "run", "run_part", "merge_parts", "PARTS"]

GENDER = SENSITIVE_ATTRIBUTES["gender"]
_KEY = "facebook_restricted"

#: Parallel shard keys: the whole experiment lives on one interface.
PARTS: tuple[str, ...] = (_KEY,)


@dataclass
class MitigationResult:
    """Detection/false-positive rates of the two policies."""

    n_honest: int = 0
    campaigns_per_advertiser: int = 0
    removal_blocked_discriminator: float = float("nan")
    removal_blocked_honest: float = float("nan")
    monitor_flagged_discriminator: bool = False
    monitor_flagged_honest: float = float("nan")
    discriminator_skewed_fraction: float = float("nan")

    def render(self) -> str:
        table = Table(
            ["policy", "stops discriminator", "burden on honest advertisers"]
        )
        table.add_row(
            "remove top-10% options",
            f"{format_percent(self.removal_blocked_discriminator, 0)} "
            "of campaigns blocked",
            f"{format_percent(self.removal_blocked_honest, 0)} "
            "of campaigns blocked",
        )
        table.add_row(
            "outcome monitor (paper §5)",
            "advertiser FLAGGED"
            if self.monitor_flagged_discriminator
            else "advertiser missed",
            f"{format_percent(self.monitor_flagged_honest, 0)} "
            "of advertisers flagged",
        )
        lines = [
            "Extension — mitigation policy comparison (FB-restricted, gender)",
            f"{self.n_honest} honest advertisers + 1 discriminatory, "
            f"{self.campaigns_per_advertiser} campaigns each",
            "",
            table.render(),
            "",
            f"discriminator's campaigns with skewed outcomes: "
            f"{format_percent(self.discriminator_skewed_fraction, 0)}",
        ]
        return "\n".join(lines)


def run_part(ctx: ExperimentContext, part: str) -> MitigationResult:
    """Run one parallel shard (there is only one: the full experiment)."""
    if part != _KEY:
        raise KeyError(part)
    return run(ctx)


def merge_parts(parts: dict[str, MitigationResult]) -> MitigationResult:
    """Reassemble shard results (trivial for a single-part experiment)."""
    return parts[_KEY]


def run(
    ctx: ExperimentContext,
    n_honest: int = 12,
    campaigns_per_advertiser: int = 6,
) -> MitigationResult:
    """Run E12 against the shared context."""
    target = ctx.target(_KEY)
    config = ctx.config
    individual = ctx.individuals(_KEY, "gender")
    rng = np.random.default_rng(config.seed)

    # Campaign portfolios.
    options = [
        a.options[0]
        for a in individual.audits
        if a.total_reach >= config.min_reach
    ]
    honest_campaigns: dict[str, list[tuple[str, ...]]] = {}
    for advertiser in range(n_honest):
        picks: list[tuple[str, ...]] = []
        while len(picks) < campaigns_per_advertiser:
            i, j = rng.choice(len(options), size=2, replace=False)
            picks.append(tuple(sorted((options[i], options[j]))))
        honest_campaigns[f"honest-{advertiser}"] = picks

    # Policy 1: removal of the top-10-percentile skewed options.
    removal = RemovalPolicy(individual.audits, percentile=10.0)

    # The discriminator adapts to the ban list (the paper's point:
    # compositions of the *surviving* options remain highly skewed), so
    # their campaigns greedily combine the most skewed allowed options.
    from repro.core.results import CompositionSet

    surviving = CompositionSet(
        individual.label,
        [a for a in individual.audits if a.options[0] not in removal.banned],
    )
    discriminator_campaigns = greedy_candidates(
        target, surviving, Gender.MALE, "top",
        n=campaigns_per_advertiser, seed=config.seed,
    )

    def blocked_fraction(campaigns: list[tuple[str, ...]]) -> float:
        if not campaigns:
            return float("nan")
        return sum(not removal.allows(c) for c in campaigns) / len(campaigns)

    # Policy 2: outcome monitoring of every launched campaign.
    monitor = OutcomeMonitor(
        target, flag_fraction=0.5, min_campaigns=min(3, campaigns_per_advertiser)
    )
    for advertiser, campaigns in honest_campaigns.items():
        for campaign in campaigns:
            monitor.review_campaign(advertiser, campaign)
    for campaign in discriminator_campaigns:
        monitor.review_campaign("discriminator", campaign)

    flagged = monitor.consistently_skewed_advertisers(min_fraction=0.8)
    flagged_honest = sum(
        a in flagged for a in honest_campaigns
    ) / max(len(honest_campaigns), 1)

    return MitigationResult(
        n_honest=n_honest,
        campaigns_per_advertiser=campaigns_per_advertiser,
        removal_blocked_discriminator=blocked_fraction(
            list(discriminator_campaigns)
        ),
        removal_blocked_honest=blocked_fraction(
            [c for cs in honest_campaigns.values() for c in cs]
        ),
        monitor_flagged_discriminator="discriminator" in flagged,
        monitor_flagged_honest=flagged_honest,
        discriminator_skewed_fraction=monitor.history(
            "discriminator"
        ).skewed_fraction,
    )
