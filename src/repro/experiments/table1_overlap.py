"""Experiment E7 -- Table 1: overlap and union recall.

Section 4.3 ("Increasing recall") and Appendix A: for each favoured
population (Male, Female, Age not 18-24, Age not 55+) on the three
interfaces supporting boolean rules (FB-restricted, Facebook,
LinkedIn -- Google shows no size statistics for boolean combinations):

* median pairwise overlap between the audiences of the top 100 skewed
  compositions toward the population (conservative: intersection over
  the smaller audience);
* recall of the single most skewed composition (Top-1);
* total recall of the top 10 compositions, estimated through the
  inclusion-exclusion principle with convergence confirmation.

Headline checks: overlaps are small (largest median 22.58%); Top-10
union recall is several times Top-1 (e.g. females on FB-restricted:
1.1M -> 6.1M).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core import pairwise_overlaps, union_recall
from repro.core.overlap import UnionRecallEstimate
from repro.experiments.context import ExperimentContext
from repro.experiments.populations import TABLE1_POPULATIONS, FavoredPopulation
from repro.reporting import Table, format_count, format_percent

__all__ = [
    "Table1Cell",
    "Table1Result",
    "run",
    "run_part",
    "merge_parts",
    "PARTS",
    "OVERLAP_KEYS",
]

#: Table 1 covers the interfaces supporting boolean and-of-or rules.
OVERLAP_KEYS = ("facebook_restricted", "facebook", "linkedin")

#: Parallel shard keys: one per overlap-capable interface.
PARTS: tuple[str, ...] = OVERLAP_KEYS


@dataclass
class Table1Cell:
    """One (population, interface) cell of Table 1."""

    population: FavoredPopulation
    target_key: str
    population_size: int
    median_overlap: float
    top1_recall: int
    top10_recall: float
    union_estimate: UnionRecallEstimate
    n_compositions: int

    @property
    def top1_fraction(self) -> float:
        """Top-1 recall as a fraction of the sensitive population."""
        if not self.population_size:
            return math.nan
        return self.top1_recall / self.population_size

    @property
    def top10_fraction(self) -> float:
        """Top-10 union recall as a fraction of the population."""
        if not self.population_size:
            return math.nan
        return self.top10_recall / self.population_size


@dataclass
class Table1Result:
    """All Table 1 cells keyed by (population label, interface key)."""

    cells: dict[tuple[str, str], Table1Cell] = field(default_factory=dict)

    def cell(self, population_label: str, key: str) -> Table1Cell:
        """Cell lookup."""
        return self.cells[(population_label, key)]

    def render(self) -> str:
        table = Table(
            [
                "population",
                "interface",
                "median overlap",
                "top-1 recall",
                "top-10 recall",
                "gain",
            ]
        )
        for (pop_label, key), cell in self.cells.items():
            gain = (
                cell.top10_recall / cell.top1_recall
                if cell.top1_recall
                else math.nan
            )
            table.add_row(
                pop_label,
                key,
                format_percent(cell.median_overlap),
                f"{format_count(cell.top1_recall)} "
                f"({format_percent(cell.top1_fraction, 1)})",
                f"{format_count(cell.top10_recall)} "
                f"({format_percent(cell.top10_fraction, 1)})",
                f"{gain:.1f}x" if not math.isnan(gain) else "-",
            )
        return "Table 1 — Overlap and union recall\n" + table.render()


def run_part(
    ctx: ExperimentContext,
    part: str,
    populations: tuple[FavoredPopulation, ...] = TABLE1_POPULATIONS,
) -> dict[str, Table1Cell]:
    """All population cells for one interface, keyed by label.

    A population whose skewed set is empty on this interface is absent
    from the returned dict (matching the sequential ``continue``).
    """
    key = part
    cells: dict[str, Table1Cell] = {}
    for population in populations:
        target = ctx.target(key)
        skewed = ctx.skewed_set(
            key, population.value, population.direction
        ).filtered(ctx.config.min_reach)
        top = skewed.top_by_ratio(
            population.value,
            ctx.config.overlap_top_k,
            ascending=population.exclude,
        )
        comps = [a.options for a in top]
        if not comps:
            continue
        overlap = pairwise_overlaps(
            target,
            comps,
            population.value,
            max_pairs=ctx.config.overlap_max_pairs,
            seed=ctx.config.seed,
            exclude=population.exclude,
        )
        union = union_recall(
            target,
            comps[: ctx.config.union_top_k],
            population.value,
            exclude=population.exclude,
        )
        top1 = target.intersection_size(
            [comps[0]], population.value, exclude=population.exclude
        )
        bases = target.base_sizes(population.attribute)
        cells[population.label] = Table1Cell(
            population=population,
            target_key=key,
            population_size=population.population_size(bases),
            median_overlap=overlap.median_overlap,
            top1_recall=top1,
            top10_recall=union.estimate,
            union_estimate=union,
            n_compositions=len(comps),
        )
    return cells


def merge_parts(
    parts: dict[str, dict[str, Table1Cell]],
    populations: tuple[FavoredPopulation, ...] = TABLE1_POPULATIONS,
) -> Table1Result:
    """Interleave per-interface shards back into population-major order."""
    result = Table1Result()
    for population in populations:
        for key in parts:
            cell = parts[key].get(population.label)
            if cell is not None:
                result.cells[(population.label, key)] = cell
    return result


def run(
    ctx: ExperimentContext,
    populations: tuple[FavoredPopulation, ...] = TABLE1_POPULATIONS,
    keys: tuple[str, ...] = OVERLAP_KEYS,
) -> Table1Result:
    """Run E7 against the shared context."""
    return merge_parts(
        {key: run_part(ctx, key, populations) for key in keys}, populations
    )
