"""Experiment E6 -- Figure 6: removal sweeps for age ranges.

Appendix A's extension of Figure 3: the same
remove-then-rediscover mitigation analysis, run for the age ranges.
The paper's observation: "in most cases, the removal of even the top
10 percentile most skewed individual attributes is insufficient to
mitigate skew in the resulting targeting compositions", with a few
exceptions (e.g. selectively including 18-24 on LinkedIn) where the
p90 does drop inside the four-fifths band.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.context import TARGET_LABELS, ExperimentContext
from repro.experiments.fig3_removal import Fig3Result, run_for_value
from repro.population.demographics import AGE_RANGES, AgeRange

__all__ = ["Fig6Result", "run", "run_part", "merge_parts", "PARTS", "FIG6_AGES"]

#: Parallel shard keys: one per audited interface.
PARTS: tuple[str, ...] = tuple(TARGET_LABELS)

#: Age ranges swept by Figure 6 (all four; the paper plots 18-24,
#: 25-34, 35-54 "top" panels plus both directions for 55+).
FIG6_AGES: tuple[AgeRange, ...] = AGE_RANGES


@dataclass
class Fig6Result:
    """Per-age removal results (each itself a Fig3-shaped result)."""

    by_age: dict[AgeRange, Fig3Result] = field(default_factory=dict)

    def render(self) -> str:
        parts = ["Figure 6 — Removal sweeps across age ranges"]
        for age, sub in self.by_age.items():
            rendered = sub.render().replace(
                "Figure 3 — Removal of skewed individual targetings (male)",
                f"Age {age.label}:",
            )
            parts += ["", rendered]
        return "\n".join(parts)


def run_part(
    ctx: ExperimentContext,
    part: str,
    ages: tuple[AgeRange, ...] = FIG6_AGES,
) -> dict[AgeRange, Fig3Result]:
    """Per-age removal sweeps for one interface (ages in figure order)."""
    return {age: run_for_value(ctx, age, keys=(part,)) for age in ages}


def merge_parts(
    parts: dict[str, dict[AgeRange, Fig3Result]],
    ages: tuple[AgeRange, ...] = FIG6_AGES,
) -> Fig6Result:
    """Interleave per-interface shards back into age-major order."""
    result = Fig6Result()
    for age in ages:
        sub = Fig3Result()
        for key in parts:
            sub.top_curves.update(parts[key][age].top_curves)
            sub.bottom_curves.update(parts[key][age].bottom_curves)
        result.by_age[age] = sub
    return result


def run(
    ctx: ExperimentContext,
    ages: tuple[AgeRange, ...] = FIG6_AGES,
    keys: tuple[str, ...] | None = None,
) -> Fig6Result:
    """Run E6 against the shared context."""
    keys = keys or tuple(ctx.target_keys)
    return merge_parts({key: run_part(ctx, key, ages) for key in keys}, ages)
