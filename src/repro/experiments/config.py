"""Experiment configuration presets.

The ``full`` preset approximates the paper's parameters (1,000
compositions per set, top-100 overlap analysis, 100-repeat consistency
study).  The ``small`` preset keeps every experiment structurally
identical but cheap enough for CI and benchmarks; ``tiny`` exists for
unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ExperimentConfig"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment driver.

    Parameters
    ----------
    n_records / seed:
        Population size per platform and the root seed.
    n_compositions:
        Compositions per Random/Top/Bottom set (paper: 1,000).
    min_reach:
        Total-recall floor below which targetings are ignored
        (paper: 10,000).
    overlap_top_k / overlap_max_pairs:
        Compositions entering the pairwise-overlap analysis (paper:
        top 100; all pairs) and an optional pair-sampling cap.
    union_top_k:
        Compositions whose union recall is estimated (paper: 10).
    removal_percentiles:
        Removal-sweep steps (paper: 0..10 in steps of 2).
    consistency_repeats / consistency_targetings:
        Repeated-call study shape (paper: 100 repeats for 20 options
        plus 20 compositions).
    """

    n_records: int = 120_000
    seed: int = 42
    n_compositions: int = 1000
    min_reach: int = 10_000
    overlap_top_k: int = 100
    overlap_max_pairs: int | None = 600
    union_top_k: int = 10
    removal_percentiles: tuple[float, ...] = (0, 2, 4, 6, 8, 10)
    consistency_repeats: int = 100
    consistency_targetings: int = 20

    @classmethod
    def full(cls) -> "ExperimentConfig":
        """Paper-scale parameters."""
        return cls()

    @classmethod
    def small(cls) -> "ExperimentConfig":
        """Benchmark-scale: same structure, ~10x cheaper."""
        return cls(
            n_records=40_000,
            n_compositions=150,
            overlap_top_k=25,
            overlap_max_pairs=120,
            union_top_k=8,
            removal_percentiles=(0, 4, 8),
            consistency_repeats=25,
            consistency_targetings=8,
        )

    @classmethod
    def tiny(cls) -> "ExperimentConfig":
        """Unit-test scale."""
        return cls(
            n_records=12_000,
            n_compositions=40,
            min_reach=10_000,
            overlap_top_k=8,
            overlap_max_pairs=20,
            union_top_k=5,
            removal_percentiles=(0, 10),
            consistency_repeats=5,
            consistency_targetings=4,
        )

    def with_records(self, n_records: int) -> "ExperimentConfig":
        """Copy with a different population size."""
        return replace(self, n_records=n_records)
