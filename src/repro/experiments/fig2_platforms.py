"""Experiment E2 -- Figure 2: skew distributions across platforms.

Section 4.2/4.3: for Facebook, Google, and LinkedIn (the restricted
interface having been covered by Figure 1), plot the distributions of
representation ratios toward males and toward ages 18-24 for the
Individual / Random 2-way / Top 2-way / Bottom 2-way sets.

Headline checks: LinkedIn individual p90 toward males 2.09 vs
Facebook's 1.45; Google's and LinkedIn's attributes skewed away from
18-24; over 90% of the most-skewed pairs outside the four-fifths
thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.stats import fraction_outside_four_fifths
from repro.experiments.base import Panel, panel_from_sets
from repro.experiments.context import ExperimentContext
from repro.population.demographics import AgeRange, Gender

__all__ = ["Fig2Result", "run", "run_part", "merge_parts", "PARTS"]

#: Figure 2 proper shows the three non-restricted platforms.
PLATFORM_KEYS = ("facebook", "google", "linkedin")

#: Parallel shard keys: one per platform panel column.
PARTS: tuple[str, ...] = PLATFORM_KEYS


@dataclass
class Fig2Result:
    """Per-platform panels for the gender and age rows of Figure 2."""

    gender_panels: dict[str, Panel] = field(default_factory=dict)
    age_panels: dict[str, Panel] = field(default_factory=dict)
    skewed_pair_fraction: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        parts = ["Figure 2 — Individual and compositional skew per platform"]
        for key, panel in self.gender_panels.items():
            parts += ["", panel.render()]
        for key, panel in self.age_panels.items():
            parts += ["", panel.render()]
        parts += ["", "Fraction of Top 2-way pairs outside four-fifths:"]
        for key, frac in self.skewed_pair_fraction.items():
            parts.append(f"  {key:<12s} {frac:.1%} (paper: >90%)")
        return "\n".join(parts)


def run_part(ctx: ExperimentContext, part: str) -> tuple[Panel, Panel, float]:
    """Both panels plus the skewed-pair fraction for one platform."""
    label = ctx.label(part)
    gender_sets = ctx.figure_sets(part, Gender.MALE)
    age_sets = ctx.figure_sets(part, AgeRange.AGE_18_24)
    gender_panel = panel_from_sets(
        f"Repr. ratio male ({label})", gender_sets, Gender.MALE
    )
    age_panel = panel_from_sets(
        f"Repr. ratio age 18-24 ({label})", age_sets, AgeRange.AGE_18_24
    )
    top = next(s for s in gender_sets if s.label == "Top 2-way")
    fraction = fraction_outside_four_fifths(top.ratios(Gender.MALE))
    return gender_panel, age_panel, fraction


def merge_parts(parts: dict[str, tuple[Panel, Panel, float]]) -> Fig2Result:
    """Reassemble per-platform shards in presentation order."""
    result = Fig2Result()
    for key in PLATFORM_KEYS:
        gender_panel, age_panel, fraction = parts[key]
        result.gender_panels[key] = gender_panel
        result.age_panels[key] = age_panel
        result.skewed_pair_fraction[key] = fraction
    return result


def run(ctx: ExperimentContext) -> Fig2Result:
    """Run E2 against the shared context."""
    return merge_parts({key: run_part(ctx, key) for key in PARTS})
