"""Deterministic counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` aggregates what a run *did* -- queries per
interface, retries per fault kind, cache hits per target, batch sizes
-- keyed by metric name plus a sorted label set.  Scoped labels
(:meth:`MetricsRegistry.scope`) let the experiment runner stamp every
metric recorded inside an experiment with ``experiment=<name>``, so
aggregation lands per platform x interface x experiment without any
seam knowing which experiment is running.

Nothing here reads a clock: histogram buckets are fixed boundaries
chosen up front, and every observed value comes from the caller
(virtual-clock durations, batch sizes, counts).  Identical runs
produce identical exports, which is what makes the registry mergeable
across parallel workers (:meth:`absorb`) without ordering effects --
counter addition commutes.

The default everywhere is the :data:`NULL_METRICS` singleton, a
:class:`NullMetrics` whose methods are no-ops; hot paths check
``metrics.enabled`` before packing labels.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "DURATION_BUCKETS",
    "COUNT_BUCKETS",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetrics",
]

#: Fixed histogram boundaries for virtual-clock durations (seconds).
DURATION_BUCKETS: tuple[float, ...] = (
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
    300.0,
)

#: Fixed histogram boundaries for sizes and counts (batch sizes, retries).
COUNT_BUCKETS: tuple[float, ...] = (1, 2, 5, 10, 25, 50, 100, 250, 500)

#: Label key/value pairs, sorted -- the canonical series identity.
_LabelKey = tuple[tuple[str, str], ...]


class _Scope:
    """Context manager pushing ambient labels onto a registry."""

    __slots__ = ("_registry", "_labels")

    def __init__(self, registry: "MetricsRegistry", labels: _LabelKey):
        self._registry = registry
        self._labels = labels

    def __enter__(self) -> "MetricsRegistry":
        self._registry._scopes.append(self._labels)
        return self._registry

    def __exit__(self, *exc: object) -> bool:
        self._registry._scopes.pop()
        return False


class MetricsRegistry:
    """Counters, gauges, and fixed-bucket histograms with labels."""

    enabled = True

    def __init__(
        self, buckets: Mapping[str, Sequence[float]] | None = None
    ):
        self._counters: dict[tuple[str, _LabelKey], float] = {}
        self._gauges: dict[tuple[str, _LabelKey], float] = {}
        #: histogram key -> [bucket counts (len boundaries + 1), count, sum]
        self._histograms: dict[tuple[str, _LabelKey], list] = {}
        self._buckets: dict[str, tuple[float, ...]] = {
            name: tuple(bounds) for name, bounds in (buckets or {}).items()
        }
        self._scopes: list[_LabelKey] = []

    # -- label plumbing -----------------------------------------------------

    def _key(self, name: str, labels: dict[str, Any]) -> tuple[str, _LabelKey]:
        items: dict[str, str] = {}
        for scope in self._scopes:
            items.update(scope)
        for key, value in labels.items():
            items[key] = str(value)
        return name, tuple(sorted(items.items()))

    def scope(self, **labels: Any) -> _Scope:
        """Ambient labels applied to everything recorded inside."""
        return _Scope(
            self, tuple(sorted((k, str(v)) for k, v in labels.items()))
        )

    def bucket_bounds(self, name: str) -> tuple[float, ...]:
        """Histogram boundaries for a metric (duration defaults)."""
        return self._buckets.get(name, DURATION_BUCKETS)

    def register_buckets(self, name: str, bounds: Sequence[float]) -> None:
        """Pin a histogram's fixed boundaries (before first observe)."""
        self._buckets[name] = tuple(bounds)

    # -- recording ----------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        key = self._key(name, labels)
        self._counters[key] = self._counters.get(key, 0.0) + value

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        self._gauges[self._key(name, labels)] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        key = self._key(name, labels)
        # Pin the boundaries on first observe so a later absorb() can
        # detect divergence even when the metric uses the defaults.
        bounds = self._buckets.setdefault(name, DURATION_BUCKETS)
        series = self._histograms.get(key)
        if series is None:
            series = self._histograms[key] = [[0] * (len(bounds) + 1), 0, 0.0]
        series[0][bisect_right(bounds, value)] += 1
        series[1] += 1
        series[2] += value

    # -- access -------------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        """One counter series' value (0.0 when never incremented)."""
        return self._counters.get(self._key(name, labels), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across every label combination."""
        return sum(
            value
            for (metric, _labels), value in self._counters.items()
            if metric == name
        )

    # -- export / merge -----------------------------------------------------

    def export(self) -> dict[str, Any]:
        """Sorted, picklable snapshot (the parallel merge payload)."""
        return {
            "counters": [
                [name, [list(pair) for pair in labels], value]
                for (name, labels), value in sorted(self._counters.items())
            ],
            "gauges": [
                [name, [list(pair) for pair in labels], value]
                for (name, labels), value in sorted(self._gauges.items())
            ],
            "histograms": [
                [
                    name,
                    [list(pair) for pair in labels],
                    {
                        "bounds": list(self.bucket_bounds(name)),
                        "buckets": list(series[0]),
                        "count": series[1],
                        "sum": series[2],
                    },
                ]
                for (name, labels), series in sorted(self._histograms.items())
            ],
        }

    def absorb(self, payload: Mapping[str, Any]) -> None:
        """Fold another registry's export in (counters add, gauges win)."""
        for name, labels, value in payload["counters"]:
            key = (name, tuple((k, v) for k, v in labels))
            self._counters[key] = self._counters.get(key, 0.0) + value
        for name, labels, value in payload["gauges"]:
            self._gauges[(name, tuple((k, v) for k, v in labels))] = value
        for name, labels, series in payload["histograms"]:
            key = (name, tuple((k, v) for k, v in labels))
            bounds = tuple(series["bounds"])
            if name not in self._buckets:
                self._buckets[name] = bounds
            elif self._buckets[name] != bounds:
                raise ValueError(
                    f"histogram {name!r} bucket boundaries diverge; "
                    "fixed buckets must match to merge"
                )
            mine = self._histograms.get(key)
            if mine is None:
                mine = self._histograms[key] = [[0] * (len(bounds) + 1), 0, 0.0]
            for index, count in enumerate(series["buckets"]):
                mine[0][index] += count
            mine[1] += series["count"]
            mine[2] += series["sum"]

    # -- rendering ----------------------------------------------------------

    def _lines(self) -> Iterator[str]:
        def shown(labels: _LabelKey) -> str:
            return (
                "{" + ", ".join(f"{k}={v}" for k, v in labels) + "}"
                if labels
                else ""
            )

        if self._counters:
            yield "counters:"
            for (name, labels), value in sorted(self._counters.items()):
                yield f"  {name}{shown(labels)} = {value:g}"
        if self._gauges:
            yield "gauges:"
            for (name, labels), value in sorted(self._gauges.items()):
                yield f"  {name}{shown(labels)} = {value:g}"
        if self._histograms:
            yield "histograms:"
            for (name, labels), series in sorted(self._histograms.items()):
                mean = series[2] / series[1] if series[1] else 0.0
                yield (
                    f"  {name}{shown(labels)} count={series[1]} "
                    f"sum={series[2]:g} mean={mean:g}"
                )

    def render(self) -> str:
        """Human-readable metrics dump (the ``--metrics`` output)."""
        lines = list(self._lines())
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)}>"
        )


class _NullScope:
    """Shared no-op scope context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class NullMetrics:
    """No-op registry with the :class:`MetricsRegistry` surface."""

    enabled = False

    def scope(self, **labels: Any) -> _NullScope:
        return _NULL_SCOPE

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        return None

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        return None

    def observe(self, name: str, value: float, **labels: Any) -> None:
        return None

    def counter_value(self, name: str, **labels: Any) -> float:
        return 0.0

    def counter_total(self, name: str) -> float:
        return 0.0

    def render(self) -> str:
        return "(metrics disabled)"

    def __repr__(self) -> str:
        return "<NullMetrics>"


#: Shared default: injected wherever no real registry was supplied.
NULL_METRICS = NullMetrics()
