"""``repro-trace``: summarize a JSONL trace written by ``--trace``.

Reads the export format of :meth:`repro.obs.trace.Tracer.write_jsonl`
(one meta line, then one flat span record per line) and prints the
numbers a run post-mortem needs: top spans by aggregate self-time,
platform query counts by interface, and retry / fault / breaker /
cache / checkpoint event totals.  ``--format json`` emits the same
summary as a machine-readable object.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = ["load_trace", "main", "summarize"]


def load_trace(path: str | Path) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Parse a JSONL trace into its meta header and span records."""
    meta: dict[str, Any] = {}
    records: list[dict[str, Any]] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        payload = json.loads(line)
        if "meta" in payload and "id" not in payload:
            meta = payload["meta"]
        else:
            records.append(payload)
    return meta, records


def summarize(
    meta: Mapping[str, Any], records: Sequence[Mapping[str, Any]]
) -> dict[str, Any]:
    """Aggregate spans and events into the report payload."""
    child_time: dict[int, float] = {}
    for record in records:
        parent = record["parent"]
        if parent is not None:
            child_time[parent] = (
                child_time.get(parent, 0.0) + record["end"] - record["start"]
            )

    spans: dict[str, dict[str, float]] = {}
    events: dict[str, int] = {}
    queries: dict[str, int] = {}
    injected = 0
    for record in records:
        duration = record["end"] - record["start"]
        agg = spans.setdefault(
            record["name"], {"count": 0, "total": 0.0, "self": 0.0}
        )
        agg["count"] += 1
        agg["total"] += duration
        # Concurrent children (absorbed worker traces) can sum past
        # their parent's wall time; negative self-time is an artifact
        # of that overlap, not a meaningful quantity.
        agg["self"] += max(0.0, duration - child_time.get(record["id"], 0.0))
        for event in record["events"]:
            # Coalesced events (cache hits/misses) carry how many
            # occurrences they stand for in a ``count`` attribute.
            weight = event["attrs"].get("count", 1)
            events[event["name"]] = events.get(event["name"], 0) + weight
            if event["name"] == "transport.request":
                attrs = event["attrs"]
                key = f"{attrs.get('platform', '?')}/{attrs.get('endpoint', '?')}"
                queries[key] = queries.get(key, 0) + 1
                if attrs.get("injected"):
                    injected += 1

    return {
        "meta": dict(meta),
        "spans": {
            name: {
                "count": int(agg["count"]),
                "total": round(agg["total"], 6),
                "self": round(agg["self"], 6),
            }
            for name, agg in sorted(spans.items())
        },
        "events": dict(sorted(events.items())),
        "queries": {
            "total": sum(queries.values()),
            "injected_faults": injected,
            "by_route": dict(sorted(queries.items())),
        },
    }


def render(summary: Mapping[str, Any], top: int = 10) -> str:
    """Human-readable report for a summarized trace."""
    meta = summary["meta"]
    lines = [
        f"trace {meta.get('name', '?')!r}: "
        f"{meta.get('spans', '?')} spans, {meta.get('events', '?')} events",
        "",
        f"top {top} spans by self-time:",
    ]
    ranked = sorted(
        summary["spans"].items(), key=lambda item: (-item[1]["self"], item[0])
    )
    for name, agg in ranked[:top]:
        lines.append(
            f"  {agg['self']:>10.4f}s self  {agg['total']:>10.4f}s total  "
            f"x{agg['count']:<6} {name}"
        )

    queries = summary["queries"]
    lines += ["", f"platform queries: {queries['total']}"]
    if queries["injected_faults"]:
        lines.append(f"  injected faults: {queries['injected_faults']}")
    for route, count in queries["by_route"].items():
        lines.append(f"  {route}: {count}")

    interesting = {
        "retry.backoff": "retries",
        "retry.after": "retry-after waits",
        "breaker.wait": "breaker waits",
        "breaker.transition": "breaker transitions",
        "chaos.fault": "chaos faults",
        "cache.hit": "cache hits",
        "cache.miss": "cache misses",
        "checkpoint.save": "checkpoint saves",
        "checkpoint.load": "checkpoint loads",
    }
    shown = [
        (label, summary["events"][name])
        for name, label in interesting.items()
        if name in summary["events"]
    ]
    if shown:
        lines.append("")
        lines.append("resilience events:")
        for label, count in shown:
            lines.append(f"  {label}: {count}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Summarize a JSONL trace written by repro-audit --trace.",
    )
    parser.add_argument("trace", help="path to the .jsonl trace file")
    parser.add_argument(
        "--top", type=int, default=10, help="span rows to show (default 10)"
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default human)",
    )
    args = parser.parse_args(argv)

    path = Path(args.trace)
    if not path.exists():
        print(f"repro-trace: no such file: {path}", file=sys.stderr)
        return 2
    meta, records = load_trace(path)
    summary = summarize(meta, records)
    if args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render(summary, top=args.top))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
