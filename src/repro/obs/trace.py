"""Deterministic structured tracing for the audit stack.

A :class:`Tracer` records a tree of named spans (``with tracer.span(
"audit.audit_many", target="facebook")``) whose timings come from
:func:`time.perf_counter` only -- never the wall clock -- and whose
*structure* (names, attributes, events, order) is a pure function of
the work performed.  Two identical runs therefore produce structurally
identical traces (compare with :func:`structure`), while the recorded
durations describe each run honestly.

Spans carry :class:`SpanEvent` records for the things the resilience
and chaos layers do between requests: retries and Retry-After
backoffs, circuit-breaker state transitions, injected chaos faults,
estimate-cache hits and misses, and checkpoint save/load.  One
``transport.request`` event is emitted per platform query, which is
what lets a trace *account* for a run: the event count equals the
transport's request counter exactly.

The default tracer everywhere is the :data:`NULL_TRACER` singleton: a
:class:`NullTracer` whose ``span``/``event`` calls are no-ops with
near-zero overhead, and whose ``enabled`` flag lets hot paths skip
even the keyword-argument packing.  Enabling tracing must never change
what a run computes -- instrumentation only observes, a contract the
differential tests enforce bit-for-bit.

Parallel runs give every worker its own tracer; the engine grafts the
exported worker traces into the parent trace in canonical shard order
(never completion order) via :meth:`Tracer.absorb`, so the merged
trace is as reproducible as the sequential one.
"""

from __future__ import annotations

import json
from pathlib import Path
from time import perf_counter
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "structure",
]


class Span:
    """One timed, named, attributed region of a trace tree."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "attrs",
        "start",
        "end",
        "events",
        "children",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        attrs: dict[str, Any],
        start: float,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start = start
        self.end = start
        #: ``(name, t, attrs)`` triples in emission order.
        self.events: list[tuple[str, float, dict[str, Any]]] = []
        self.children: list[Span] = []

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def self_time(self) -> float:
        """Duration not covered by child spans."""
        return self.duration - sum(child.duration for child in self.children)

    def to_record(self) -> dict[str, Any]:
        """Flat JSON-able form (children travel as separate records)."""
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "attrs": dict(sorted(self.attrs.items())),
            "start": self.start,
            "end": self.end,
            "events": [
                {"name": name, "t": t, "attrs": dict(sorted(attrs.items()))}
                for name, t, attrs in self.events
            ],
        }

    def __repr__(self) -> str:
        return (
            f"<Span {self.span_id} {self.name!r} "
            f"{self.duration:.6f}s events={len(self.events)}>"
        )


class _SpanHandle:
    """Context manager closing one span; returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc: object) -> bool:
        self._tracer._close(self._span)
        return False


class Tracer:
    """Collects a span tree; timings are perf_counter offsets.

    All times are seconds relative to the tracer's construction, so
    exported traces are small, mergeable floats rather than absolute
    host timestamps.  The tracer keeps an always-open root span; spans
    opened via :meth:`span` nest under the innermost open span, and
    :meth:`event` attaches to it.
    """

    enabled = True

    def __init__(self, name: str = "trace", **attrs: Any):
        self._t0 = perf_counter()
        self.root = Span(0, None, name, attrs, 0.0)
        self._next_id = 1
        self._stack: list[Span] = [self.root]

    def _now(self) -> float:
        return perf_counter() - self._t0

    # -- recording ----------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """Open a child span of the innermost open span."""
        parent = self._stack[-1]
        span = Span(self._next_id, parent.span_id, name, attrs, self._now())
        self._next_id += 1
        parent.children.append(span)
        self._stack.append(span)
        return _SpanHandle(self, span)

    def _close(self, span: Span) -> None:
        if self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed while {self._stack[-1].name!r} "
                "is still open"
            )
        # Absorbed worker spans ran on concurrent clocks and may extend
        # past this moment; a parent's interval always covers its
        # children's.
        end = self._now()
        for child in span.children:
            if child.end > end:
                end = child.end
        span.end = end
        self._stack.pop()

    def event(self, name: str, **attrs: Any) -> None:
        """Attach an event to the innermost open span."""
        self._stack[-1].events.append((name, self._now(), attrs))

    @property
    def current(self) -> Span:
        """The innermost open span (the root when none is open)."""
        return self._stack[-1]

    # -- merging (parallel engine) ------------------------------------------

    def absorb(
        self, records: Sequence[Mapping[str, Any]], name: str, **attrs: Any
    ) -> Span:
        """Graft an exported trace under a new child span.

        ``records`` is another tracer's :meth:`export` output (worker
        traces in a parallel run).  The absorbed trace's root collapses
        into the new anchor span -- its attributes and events merge in
        -- and every absorbed time is shifted by the anchor's start, so
        the merged tree still nests properly.  Callers must absorb
        shards in canonical order; this method is order-preserving,
        never order-restoring.
        """
        parent = self._stack[-1]
        offset = self._now()
        anchor = Span(self._next_id, parent.span_id, name, attrs, offset)
        self._next_id += 1
        parent.children.append(anchor)
        remap: dict[int, Span] = {}
        end = offset
        for record in records:
            events = [
                (e["name"], e["t"] + offset, dict(e["attrs"]))
                for e in record["events"]
            ]
            if record["parent"] is None:
                # The absorbed root: merge into the anchor.
                anchor.attrs.update(record["attrs"])
                anchor.events.extend(events)
                remap[record["id"]] = anchor
                end = max(end, record["end"] + offset)
                continue
            target = remap.get(record["parent"], anchor)
            span = Span(
                self._next_id,
                target.span_id,
                record["name"],
                dict(record["attrs"]),
                record["start"] + offset,
            )
            self._next_id += 1
            span.end = record["end"] + offset
            span.events = events
            target.children.append(span)
            remap[record["id"]] = span
            end = max(end, span.end)
        anchor.end = end
        return anchor

    # -- export -------------------------------------------------------------

    def _walk(self) -> Iterator[Span]:
        stack = [self.root]
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def export(self) -> list[dict[str, Any]]:
        """Every span as a flat record, in pre-order.

        Open spans (including the root) export with ``end`` set to the
        current offset, without being closed.
        """
        now = self._now()
        records = []
        for span in self._walk():
            record = span.to_record()
            if span in self._stack:
                end = now
                for child in span.children:
                    if child.end > end:
                        end = child.end
                record["end"] = end
            records.append(record)
        return records

    def event_counts(self) -> dict[str, int]:
        """Event occurrences by name across the whole trace."""
        counts: dict[str, int] = {}
        for span in self._walk():
            for name, _t, _attrs in span.events:
                counts[name] = counts.get(name, 0) + 1
        return dict(sorted(counts.items()))

    def write_jsonl(self, path: str | Path) -> Path:
        """Write the trace as JSONL: one meta line, then one span per line."""
        target = Path(path)
        records = self.export()
        events = sum(len(record["events"]) for record in records)
        lines = [
            json.dumps(
                {
                    "meta": {
                        "version": 1,
                        "name": self.root.name,
                        "spans": len(records),
                        "events": events,
                    }
                },
                sort_keys=True,
            )
        ]
        lines.extend(json.dumps(record, sort_keys=True) for record in records)
        target.write_text("\n".join(lines) + "\n")
        return target

    def __repr__(self) -> str:
        return (
            f"<Tracer {self.root.name!r} spans={self._next_id} "
            f"open={len(self._stack)}>"
        )


class _NullSpanHandle:
    """Shared no-op context manager; one instance serves every call."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpanHandle()


class NullTracer:
    """No-op tracer with the :class:`Tracer` surface.

    ``enabled`` is ``False`` so hot paths can skip building keyword
    arguments entirely; calls that do land here return immediately.
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpanHandle:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def absorb(
        self, records: Sequence[Mapping[str, Any]], name: str, **attrs: Any
    ) -> None:
        return None

    def event_counts(self) -> dict[str, int]:
        return {}

    def __repr__(self) -> str:
        return "<NullTracer>"


#: Shared default: injected wherever no real tracer was supplied.
NULL_TRACER = NullTracer()


def structure(records: Sequence[Mapping[str, Any]]) -> tuple:
    """Timing-free shape of an exported trace, for equality checks.

    Returns a nested tuple of ``(name, attrs, events, children)``
    mirroring the span tree: identical runs must produce equal
    structures even though their perf-counter timings differ.
    """
    children: dict[int | None, list[Mapping[str, Any]]] = {}
    for record in records:
        children.setdefault(record["parent"], []).append(record)

    def shape(record: Mapping[str, Any]) -> tuple:
        return (
            record["name"],
            tuple(sorted((k, v) for k, v in record["attrs"].items())),
            tuple(
                (e["name"], tuple(sorted((k, v) for k, v in e["attrs"].items())))
                for e in record["events"]
            ),
            tuple(shape(c) for c in children.get(record["id"], [])),
        )

    return tuple(shape(record) for record in children.get(None, []))
