"""Deterministic observability: structured tracing and metrics.

This package is an island like :mod:`repro.analysis`: it imports
nothing from the rest of ``repro`` and every layer may import it.
Library code receives tracers and registries by injection -- only
composition roots (CLIs, workers, tests) construct them, a rule
``repro-lint`` enforces (``obs/ambient-instrumentation``).
"""

from repro.obs.metrics import (
    COUNT_BUCKETS,
    DURATION_BUCKETS,
    NULL_METRICS,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer, structure

__all__ = [
    "COUNT_BUCKETS",
    "DURATION_BUCKETS",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "Span",
    "Tracer",
    "structure",
]
